package dtx_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	dtx "repro"
)

// quorumConfig is the shared 3-replica quorum-mode cluster configuration of
// this suite: journaled, heartbeat-driven failure detection, write quorum 2
// of 3 — one follower may be down without stalling writes.
func quorumConfig(t *testing.T) dtx.Config {
	t.Helper()
	return dtx.Config{
		Sites:             3,
		StoreDir:          t.TempDir(),
		Journal:           true,
		PersistDelay:      -1,
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatMisses:   2,
		Replication:       dtx.ReplicationQuorum,
		WriteQuorum:       2,
	}
}

// TestQuorumWriteSurvivesFollowerCrash is the availability win the quorum
// mode exists for: with a 3-replica document and WriteQuorum 2, killing a
// follower does NOT stop writes (eager mode fails them with
// ErrReplicaUnavailable), and the restarted follower converges through
// incremental replication-log catch-up rather than whole-document transfer.
func TestQuorumWriteSurvivesFollowerCrash(t *testing.T) {
	cluster, err := dtx.New(quorumConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.LoadXML("d1",
		`<people><person><id>4</id><name>Ana</name></person></people>`); err != nil {
		t.Fatal(err)
	}

	// Committed traffic before the crash.
	if _, err := cluster.Submit(0, dtx.Change("d1", "//person[id='4']/name", "Bea")); err != nil {
		t.Fatal(err)
	}
	cluster.Sync()

	// Kill a FOLLOWER of d1 (the primary is the lowest catalog site, 0).
	if err := cluster.KillSite(2); err != nil {
		t.Fatal(err)
	}

	// Writes keep committing on the remaining quorum — every single one, not
	// just eventually: the dead follower simply never acks, and primary +
	// follower 1 are the quorum.
	for i := 0; i < 5; i++ {
		res, err := cluster.Submit(0, dtx.Change("d1", "//person[id='4']/name",
			fmt.Sprintf("Cal%d", i)))
		if err != nil {
			if errors.Is(err, dtx.ErrReplicaUnavailable) {
				t.Fatalf("write %d refused with ErrReplicaUnavailable despite a live quorum", i)
			}
			t.Fatalf("write %d under one-follower-down: %v", i, err)
		}
		if !res.Committed {
			t.Fatalf("write %d not committed: %s", i, res.Reason)
		}
	}

	// The surviving follower is current, so reads served there see the tail.
	waitFor(t, 5*time.Second, "surviving follower current", func() bool {
		res, err := cluster.SubmitReadOnly(1, dtx.Query("d1", "//person[id='4']/name"))
		return err == nil && res.Committed && len(res.Results[0]) == 1 && res.Results[0][0] == "Cal4"
	})

	// Restart the dead follower: recovery must converge it through the
	// incremental log — the missed span is within the horizon — not by
	// replacing the whole document.
	report, err := cluster.RestartSite(2)
	if err != nil {
		t.Fatal(err)
	}
	if report.ReplRecords == 0 {
		t.Fatalf("restart used no incremental catch-up (report %s)", report)
	}

	// Every replica converges to identical XML.
	want := mustXML(t, cluster, 0, "d1")
	for site := 1; site < 3; site++ {
		if got := mustXML(t, cluster, site, "d1"); got != want {
			t.Fatalf("site %d diverged (report %s):\nwant %s\ngot  %s", site, report, want, got)
		}
	}

	// And the readmitted follower receives post-restart writes by shipping.
	waitFor(t, 5*time.Second, "writes replicate to restarted follower", func() bool {
		res, err := cluster.Submit(1, dtx.Change("d1", "//person[id='4']/name", "Dan"))
		if err != nil || !res.Committed {
			return false
		}
		return mustXML(t, cluster, 2, "d1") == mustXML(t, cluster, 0, "d1")
	})
}

// TestQuorumPrimaryDownFailsWrites: quorum mode routes every write through
// the document's primary, so losing IT is the one crash that still refuses
// writes — while followers, which are fully applied, keep serving snapshot
// reads.
func TestQuorumPrimaryDownFailsWrites(t *testing.T) {
	cluster, err := dtx.New(quorumConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.LoadXML("d1",
		`<people><person><id>4</id><name>Ana</name></person></people>`); err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.Submit(1, dtx.Change("d1", "//person[id='4']/name", "Bea")); err != nil {
		t.Fatal(err)
	}
	cluster.Sync()

	if err := cluster.KillSite(0); err != nil { // d1's primary
		t.Fatal(err)
	}

	// Once the failure detector convicts the primary, writes fail fast with
	// the typed replica error.
	waitFor(t, 5*time.Second, "typed write failure", func() bool {
		_, err := cluster.Submit(1, dtx.Change("d1", "//person[id='4']/name", "Cal"))
		return errors.Is(err, dtx.ErrReplicaUnavailable)
	})

	// The followers applied everything before the crash, so they are not
	// stale and snapshot reads keep succeeding.
	res, err := cluster.SubmitReadOnly(1, dtx.Query("d1", "//person[id='4']/name"))
	if err != nil || !res.Committed {
		t.Fatalf("follower read with primary down: %v / %+v", err, res)
	}
	if len(res.Results[0]) != 1 || res.Results[0][0] != "Bea" {
		t.Fatalf("follower read = %v, want [Bea]", res.Results[0])
	}
}

// TestQuorumCatchUpPastHorizon: a follower that missed more records than the
// primary's log retains cannot catch up incrementally — recovery falls back
// to whole-document transfer and re-anchors the replication position at the
// transferred head, after which incremental shipping resumes.
func TestQuorumCatchUpPastHorizon(t *testing.T) {
	cfg := quorumConfig(t)
	cfg.ReplHorizon = 4
	cluster, err := dtx.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.LoadXML("d1",
		`<people><person><id>4</id><name>Ana</name></person></people>`); err != nil {
		t.Fatal(err)
	}

	if err := cluster.KillSite(2); err != nil {
		t.Fatal(err)
	}

	// Push the primary's log well past the horizon while the follower is
	// down: its resume position (0) falls behind the compaction floor.
	for i := 0; i < 8; i++ {
		if res, err := cluster.Submit(0, dtx.Change("d1", "//person[id='4']/name",
			fmt.Sprintf("N%d", i))); err != nil || !res.Committed {
			t.Fatalf("write %d: %v / %+v", i, err, res)
		}
	}

	report, err := cluster.RestartSite(2)
	if err != nil {
		t.Fatal(err)
	}
	if report.ReplRecords != 0 {
		t.Fatalf("incremental catch-up crossed the compaction horizon (report %s)", report)
	}
	if len(report.CaughtUp) == 0 {
		t.Fatalf("whole-document fallback did not run (report %s)", report)
	}

	want := mustXML(t, cluster, 0, "d1")
	if got := mustXML(t, cluster, 2, "d1"); got != want {
		t.Fatalf("restarted follower diverged:\nwant %s\ngot  %s", want, got)
	}

	// The re-anchored position accepts incremental shipping again.
	waitFor(t, 5*time.Second, "incremental shipping after re-anchor", func() bool {
		res, err := cluster.Submit(0, dtx.Change("d1", "//person[id='4']/name", "Zoe"))
		if err != nil || !res.Committed {
			return false
		}
		return mustXML(t, cluster, 2, "d1") == mustXML(t, cluster, 0, "d1")
	})
}
