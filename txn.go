package dtx

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/sched"
	"repro/internal/txn"
)

// Txn is an interactive transaction handle: each step executes immediately
// under strict 2PL, returns what it read, and keeps its locks until Commit
// or Abort — so a client can query, branch on the result, and update within
// one isolated unit of work spanning any number of sites.
//
// The handle is bound to the context passed to Begin. Cancelling it (or its
// deadline expiring) aborts the transaction and releases its locks at every
// participant site; the in-flight and all later calls return an error
// wrapping ErrAborted. A Txn is meant to be driven by one goroutine, like
// database/sql.Tx.
type Txn struct {
	sess *sched.Session
	site int
}

// Begin opens an interactive transaction coordinated by the given site. The
// context governs the whole transaction lifetime.
func (c *Cluster) Begin(ctx context.Context, site int) (*Txn, error) {
	if site < 0 || site >= len(c.ids) {
		return nil, fmt.Errorf("%w: site %d (cluster has %d)", ErrSiteOutOfRange, site, len(c.ids))
	}
	sess, err := c.site(site).Begin(ctx)
	if err != nil {
		return nil, err
	}
	return &Txn{sess: sess, site: site}, nil
}

// BeginReadOnly opens an interactive read-only transaction coordinated by
// the given site, served by the MVCC snapshot-read subsystem instead of the
// lock manager. Every query reads the newest committed version of its
// document at or below the transaction's begin timestamp — never a writer's
// mid-transaction state, and repeatably (re-reading a document observes the
// same version). Read-only transactions acquire no locks and add no wait-for
// edges, so they can never deadlock with writers or be chosen as deadlock
// victims; Commit is a trivially cheap release of the read snapshot. Updates
// are refused with ErrReadOnly without terminating the transaction. A read
// whose snapshot was already retired by version GC fails the transaction
// with ErrSnapshotUnavailable — resubmit to read a fresh snapshot.
func (c *Cluster) BeginReadOnly(ctx context.Context, site int) (*Txn, error) {
	if site < 0 || site >= len(c.ids) {
		return nil, fmt.Errorf("%w: site %d (cluster has %d)", ErrSiteOutOfRange, site, len(c.ids))
	}
	sess, err := c.site(site).BeginReadOnly(ctx)
	if err != nil {
		return nil, err
	}
	return &Txn{sess: sess, site: site}, nil
}

// ID returns the transaction identifier (coordinator site + sequence).
func (t *Txn) ID() string { return t.sess.ID().String() }

// ReadOnly reports whether the transaction was opened with BeginReadOnly.
func (t *Txn) ReadOnly() bool { return t.sess.ReadOnly() }

// Site returns the coordinator site of the transaction.
func (t *Txn) Site() int { return t.site }

// Err returns the transaction's terminal error: nil while it is running or
// after a successful commit, the typed abort/failure error otherwise.
func (t *Txn) Err() error { return t.sess.Err() }

// Do executes one operation and returns its query results (nil for
// updates). On error the transaction is already resolved — aborted or
// failed everywhere, locks released — and every later call returns the same
// terminal error.
func (t *Txn) Do(op Op) ([]string, error) {
	return t.sess.Exec(op.inner)
}

// Query reads the nodes selected by the XPath expression and returns their
// string rendering (attribute value for /@attr steps, text content
// otherwise), read-locked until the transaction ends.
func (t *Txn) Query(doc, path string) ([]string, error) {
	return t.Do(Query(doc, path))
}

// DoBatch executes several independent read-only operations concurrently —
// their per-site round trips overlap instead of paying one round trip per
// step — and returns their query results in argument order. All operations
// must be queries (built with Query); reads of one transaction have no
// mutual ordering a client can observe, since under strict 2PL every lock
// is held until Commit or Abort either way. A batch refused up front (an
// operation that is not a query, or malformed) returns an error WITHOUT
// affecting the transaction — it stays live, holding its locks, and
// accepts further steps. An error from executing the batch means the
// transaction is already resolved cluster-wide, exactly as for Do.
func (t *Txn) DoBatch(ops ...Op) ([][]string, error) {
	inner := make([]txn.Operation, len(ops))
	for i, op := range ops {
		inner[i] = op.inner
	}
	return t.sess.ExecBatch(inner)
}

// Insert adds a new subtree at the given position relative to the target.
func (t *Txn) Insert(doc, target string, pos Position, node Node) error {
	_, err := t.Do(Insert(doc, target, pos, node))
	return err
}

// Remove deletes the subtree(s) selected by the target path.
func (t *Txn) Remove(doc, target string) error {
	_, err := t.Do(Remove(doc, target))
	return err
}

// Rename changes the element name of the selected node(s).
func (t *Txn) Rename(doc, target, newName string) error {
	_, err := t.Do(Rename(doc, target, newName))
	return err
}

// Change replaces the text content of the selected node(s).
func (t *Txn) Change(doc, target, value string) error {
	_, err := t.Do(Change(doc, target, value))
	return err
}

// ChangeAttr sets an attribute on the selected node(s).
func (t *Txn) ChangeAttr(doc, target, attr, value string) error {
	_, err := t.Do(ChangeAttr(doc, target, attr, value))
	return err
}

// Transpose swaps the positions of the two selected nodes.
func (t *Txn) Transpose(doc, a, b string) error {
	_, err := t.Do(Transpose(doc, a, b))
	return err
}

// Commit consolidates the transaction at every involved site and releases
// its locks. A pending deadlock-victim signal or context cancellation wins
// and aborts instead, returning the corresponding typed error.
func (t *Txn) Commit() error { return t.sess.Commit() }

// Abort rolls the transaction back everywhere and releases its locks.
// Returns nil on a clean abort; a second Abort (or one after Commit)
// returns the transaction's terminal error or ErrTxnDone.
func (t *Txn) Abort() error { return t.sess.Abort() }

// RetryPolicy bounds the resubmission of deadlock victims: MaxAttempts
// total tries with exponential backoff between them. The zero value is
// usable and means DefaultRetryPolicy.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, first included (default 5).
	MaxAttempts int
	// Backoff is the pause before the first retry (default 2ms).
	Backoff time.Duration
	// MaxBackoff caps the growing pause (default 250ms).
	MaxBackoff time.Duration
	// Multiplier scales the pause after every retry (default 2).
	Multiplier float64
}

// DefaultRetryPolicy is a sensible policy for contended workloads.
var DefaultRetryPolicy = RetryPolicy{
	MaxAttempts: 5,
	Backoff:     2 * time.Millisecond,
	MaxBackoff:  250 * time.Millisecond,
	Multiplier:  2,
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultRetryPolicy.MaxAttempts
	}
	if p.Backoff <= 0 {
		p.Backoff = DefaultRetryPolicy.Backoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = DefaultRetryPolicy.MaxBackoff
	}
	if p.Multiplier < 1 {
		p.Multiplier = DefaultRetryPolicy.Multiplier
	}
	return p
}

// SubmitWithRetry runs the transaction like SubmitCtx but resubmits it when
// it is aborted as a deadlock victim — the paper leaves resubmission "to the
// application", and this is that decision packaged as a bounded
// exponential-backoff policy. ErrDeadlock and ErrSnapshotUnavailable
// outcomes are retried (both mean "resubmission is safe and should
// succeed"); any other error (including a cancellation-triggered ErrAborted)
// returns immediately. After MaxAttempts the last retryable error is
// returned.
func (c *Cluster) SubmitWithRetry(ctx context.Context, site int, policy RetryPolicy, ops ...Op) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	policy = policy.withDefaults()
	backoff := policy.Backoff
	for attempt := 1; ; attempt++ {
		res, err := c.SubmitCtx(ctx, site, ops...)
		retryable := errors.Is(err, ErrDeadlock) || errors.Is(err, ErrSnapshotUnavailable)
		if err == nil || !retryable || attempt >= policy.MaxAttempts {
			return res, err
		}
		timer := time.NewTimer(backoff)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return res, fmt.Errorf("%w: %w", ErrAborted, context.Cause(ctx))
		}
		backoff = time.Duration(float64(backoff) * policy.Multiplier)
		if backoff > policy.MaxBackoff {
			backoff = policy.MaxBackoff
		}
	}
}

// result converts a scheduler outcome into the public shape.
func result(res *sched.Result) *Result {
	return &Result{
		ID:        res.Txn.String(),
		Committed: res.State == txn.Committed,
		State:     strings.ToLower(res.State.String()),
		Reason:    res.Reason,
		Results:   res.Results,
	}
}
