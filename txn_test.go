package dtx

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTxnInteractiveAcrossSites is the acceptance scenario: an interactive
// transaction spanning two sites — Begin, Query, branch on the result,
// Update, Commit — with d1 replicated at both sites and d2 held only at
// site 1, so the write decided from the read goes remote.
func TestTxnInteractiveAcrossSites(t *testing.T) {
	c, err := New(Config{Sites: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.LoadXML("d1", peopleXML, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.LoadXML("d2", `<products><product><id>14</id><price>120.00</price></product></products>`, 1); err != nil {
		t.Fatal(err)
	}

	txn, err := c.Begin(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if txn.Site() != 0 || txn.ID() == "" {
		t.Fatalf("handle = site %d id %q", txn.Site(), txn.ID())
	}
	names, err := txn.Query("d1", "//person[id='4']/name")
	if err != nil {
		t.Fatal(err)
	}
	// Branch on what was read: Ana exists, so record her order in the
	// remote-only products document.
	if len(names) != 1 || names[0] != "Ana" {
		t.Fatalf("read %v", names)
	}
	if err := txn.Insert("d2", "/products", Into,
		Elem("product", "", Elem("id", "90"), Elem("price", "9.99"))); err != nil {
		t.Fatal(err)
	}
	prices, err := txn.Query("d2", "//product[id='90']/price")
	if err != nil {
		t.Fatal(err)
	}
	if len(prices) != 1 || prices[0] != "9.99" {
		t.Fatalf("own write not visible: %v", prices)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if txn.Err() != nil {
		t.Fatalf("terminal error after commit: %v", txn.Err())
	}
	// Committed remotely.
	xml, err := c.DocumentXML(1, "d2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(xml, "9.99") {
		t.Fatalf("remote commit lost:\n%s", xml)
	}
}

// TestTxnCancelMidFlightReleasesLocks is the second acceptance criterion:
// cancelling the context of an in-flight interactive transaction aborts it
// with errors.Is(err, ErrAborted) and releases all its locks at every
// participant site — verified by a concurrent transaction then succeeding.
func TestTxnCancelMidFlightReleasesLocks(t *testing.T) {
	c, err := New(Config{Sites: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.LoadXML("d1", peopleXML); err != nil { // replicated at both sites
		t.Fatal(err)
	}

	// The victim takes X locks at both replicas, then blocks forever on a
	// lock already held by the holder transaction.
	hold, err := c.Begin(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := hold.Insert("d1", "/people", Into, Elem("person", "", Elem("id", "h"))); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	victim, err := c.Begin(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	stepErr := make(chan error, 1)
	go func() {
		stepErr <- victim.Insert("d1", "/people", Into, Elem("person", "", Elem("id", "v")))
	}()
	time.Sleep(30 * time.Millisecond) // let the step enter lock wait
	cancel()
	select {
	case err := <-stepErr:
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("cancelled step = %v, want errors.Is(err, ErrAborted)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not unblock the in-flight step")
	}
	// Every later use reports the same terminal state.
	if _, err := victim.Query("d1", "//person"); !errors.Is(err, ErrAborted) {
		t.Fatalf("step after cancel = %v", err)
	}

	// The holder commits, then a fresh transaction walks straight through
	// the paths the victim had locked — nothing leaked at either site.
	if err := hold.Commit(); err != nil {
		t.Fatal(err)
	}
	res, err := c.Submit(1, Insert("d1", "/people", Into, Elem("person", "", Elem("id", "after"))))
	if err != nil || !res.Committed {
		t.Fatalf("post-cancel transaction blocked: %v %+v", err, res)
	}
	x0, _ := c.DocumentXML(0, "d1")
	if strings.Contains(x0, `<id>v</id>`) {
		t.Fatal("victim's insert survived the abort")
	}
}

// TestSubmitTypedErrors: the batch API reports the sentinel taxonomy.
func TestSubmitTypedErrors(t *testing.T) {
	c, err := New(Config{Sites: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.LoadXML("d1", peopleXML); err != nil {
		t.Fatal(err)
	}

	if _, err := c.Submit(9, Query("d1", "/x")); !errors.Is(err, ErrSiteOutOfRange) {
		t.Fatalf("out-of-range site = %v", err)
	}
	if _, err := c.Begin(context.Background(), -1); !errors.Is(err, ErrSiteOutOfRange) {
		t.Fatalf("out-of-range Begin = %v", err)
	}
	res, err := c.Submit(0, Query("ghost", "/x"))
	if !errors.Is(err, ErrUnknownDocument) {
		t.Fatalf("unknown document = %v", err)
	}
	if res == nil || res.State != "failed" {
		t.Fatalf("failed result = %+v", res)
	}
	if _, err := c.DocumentXML(0, "ghost"); !errors.Is(err, ErrUnknownDocument) {
		t.Fatalf("DocumentXML unknown doc = %v", err)
	}
	// A cancelled context surfaces as ErrAborted wrapping the cause.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.SubmitCtx(ctx, 0, Query("d1", "//person")); !errors.Is(err, ErrAborted) || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled submit = %v", err)
	}
}

// TestSubmitWithRetryCommitsUnderContention: cross-document two-op
// transactions from opposite sites deadlock routinely; with the retry
// policy every client eventually commits.
func TestSubmitWithRetryCommitsUnderContention(t *testing.T) {
	c, err := New(Config{
		Sites:                 2,
		DeadlockCheckInterval: 5 * time.Millisecond,
		ClientThinkTime:       time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.LoadXML("d1", peopleXML); err != nil {
		t.Fatal(err)
	}
	if err := c.LoadXML("d2", `<products><product><id>4</id><price>50.00</price></product></products>`); err != nil {
		t.Fatal(err)
	}

	const clients = 8
	policy := RetryPolicy{MaxAttempts: 200, Backoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond}
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var ops []Op
			if i%2 == 0 {
				ops = []Op{
					Query("d1", "//person/name"),
					Change("d2", "//product[id='4']/price", fmt.Sprintf("%d.00", i)),
				}
			} else {
				ops = []Op{
					Query("d2", "//product/price"),
					Insert("d1", "/people", Into, Elem("person", "", Elem("id", fmt.Sprintf("r%d", i)))),
				}
			}
			_, err := c.SubmitWithRetry(context.Background(), i%2, policy, ops...)
			errs <- err
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("retry did not converge: %v", err)
		}
	}
	// Replicas converge after the storm.
	x0, _ := c.DocumentXML(0, "d1")
	x1, _ := c.DocumentXML(1, "d1")
	if x0 != x1 {
		t.Fatal("replicas diverged")
	}
}

// TestSubmitWithRetryDoesNotRetryFailures: only deadlock victims are
// resubmitted; typed failures return on the first attempt.
func TestSubmitWithRetryDoesNotRetryFailures(t *testing.T) {
	c, err := New(Config{Sites: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.SubmitWithRetry(context.Background(), 0,
		RetryPolicy{MaxAttempts: 10, Backoff: 100 * time.Millisecond},
		Query("ghost", "/x"))
	if !errors.Is(err, ErrUnknownDocument) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > 80*time.Millisecond {
		t.Fatal("a non-deadlock failure was retried")
	}
}

// TestTxnDeadlockVictimTyped replays the paper's §2.4 deadlock on the
// interactive API: the victim's blocked step returns ErrDeadlock (which is
// also an ErrAborted), and the survivor commits.
func TestTxnDeadlockVictimTyped(t *testing.T) {
	c, err := New(Config{Sites: 2, DeadlockCheckInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.LoadXML("d1", peopleXML, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.LoadXML("d2", `<products><product><id>14</id></product></products>`, 1); err != nil {
		t.Fatal(err)
	}

	t1, err := c.Begin(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := c.Begin(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// First operations: t1 read-locks d1, t2 read-locks d2.
	if _, err := t1.Query("d1", "//person"); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Query("d2", "//product"); err != nil {
		t.Fatal(err)
	}
	// Second operations collide: t1 writes d2 (behind t2's read lock), t2
	// writes d1 (behind t1's read lock) — the distributed deadlock.
	var wg sync.WaitGroup
	var e1, e2 error
	wg.Add(2)
	go func() {
		defer wg.Done()
		e1 = t1.Insert("d2", "/products", Into, Elem("product", "", Elem("id", "13")))
		if e1 == nil {
			e1 = t1.Commit()
		}
	}()
	go func() {
		defer wg.Done()
		time.Sleep(5 * time.Millisecond) // t2's write starts second: t2 is newer
		e2 = t2.Insert("d1", "/people", Into, Elem("person", "", Elem("id", "22")))
		if e2 == nil {
			e2 = t2.Commit()
		}
	}()
	wg.Wait()

	// Exactly one of the two must fall — the detector picks the newest in
	// the cycle, which with this interleaving is t2; accept either victim
	// but require the typed classification and a surviving commit.
	switch {
	case e1 == nil && e2 != nil:
		if !errors.Is(e2, ErrDeadlock) || !errors.Is(e2, ErrAborted) {
			t.Fatalf("victim error = %v", e2)
		}
	case e2 == nil && e1 != nil:
		if !errors.Is(e1, ErrDeadlock) || !errors.Is(e1, ErrAborted) {
			t.Fatalf("victim error = %v", e1)
		}
	default:
		t.Fatalf("want one survivor and one victim, got e1=%v e2=%v", e1, e2)
	}
}
